package mt

// Fault containment and recovery: the robust shared-lock protocol
// (EOWNERDEAD / ENOTRECOVERABLE), deadlock detection (EDEADLK and the
// system-wide detector), timed acquisition, LWP pool aging, and panic
// containment. See DESIGN.md "Failure model".

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/procfs"
)

// pollUntil spins (host-side) until cond holds or the deadline
// passes, reporting whether it held.
func pollUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// TestRobustMutexKillWhileHolding pins the heart of the robust
// protocol: a process is SIGKILLed while guaranteed inside a shared
// critical section; the sweep marks the lock, the next acquirer gets
// ErrOwnerDead exactly once, and MakeConsistent restores service.
func TestRobustMutexKillWhileHolding(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var holding atomic.Bool
	victim := spawn(t, sys, "victim", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Enter(tt)
		holding.Store(true)
		for {
			tt.Checkpoint() // spins holding the lock until killed
		}
	})
	if !pollUntil(10*time.Second, holding.Load) {
		t.Fatal("victim never entered the critical section")
	}
	if err := victim.Kill(SIGKILL); err != nil {
		t.Fatal(err)
	}
	if _, sig := waitProc(t, victim); sig != SIGKILL {
		t.Fatalf("victim exit signal = %v, want SIGKILL", sig)
	}

	survivor := spawn(t, sys, "survivor", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mu.EnterErr(tt); err != ErrOwnerDead {
			t.Errorf("first acquisition after death = %v, want ErrOwnerDead", err)
			return
		}
		if !mu.MakeConsistent(tt) {
			t.Error("MakeConsistent refused")
		}
		mu.Exit(tt)
		// The death report is one-shot.
		if err := mu.EnterErr(tt); err != nil {
			t.Errorf("second acquisition = %v, want nil", err)
			return
		}
		mu.Exit(tt)
	})
	waitProc(t, survivor)
}

// TestRobustMutexNotRecoverable: releasing an owner-dead lock without
// MakeConsistent poisons it permanently (ENOTRECOVERABLE), and every
// later acquisition path reports that instead of hanging.
func TestRobustMutexNotRecoverable(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	locker := spawn(t, sys, "locker", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		mu.Enter(tt)
		tt.ExitProcess(1) // dies holding
	})
	waitProc(t, locker)

	after := spawn(t, sys, "after", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		if err := mu.EnterErr(tt); err != ErrOwnerDead {
			t.Errorf("EnterErr = %v, want ErrOwnerDead", err)
			return
		}
		mu.Exit(tt) // no MakeConsistent: poisons the lock
		if err := mu.EnterErr(tt); err != ErrNotRecoverable {
			t.Errorf("EnterErr after poisoning = %v, want ErrNotRecoverable", err)
		}
		if mu.TryEnter(tt) {
			t.Error("TryEnter acquired a not-recoverable lock")
		}
		if err := mu.TimedEnter(tt, time.Millisecond); err != ErrNotRecoverable {
			t.Errorf("TimedEnter = %v, want ErrNotRecoverable", err)
		}
	})
	waitProc(t, after)
}

// TestRobustRWLockOwnerDeath: a writer dies holding a shared rwlock;
// the first subsequent acquirer — in either mode — gets ErrOwnerDead
// and holds an exclusive claim until MakeConsistent.
func TestRobustRWLockOwnerDeath(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	writer := spawn(t, sys, "writer", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		rw, _ := p.SharedRWLockAt(tt, va)
		rw.Enter(tt, RWWriter)
		tt.ExitProcess(1)
	})
	waitProc(t, writer)

	reader := spawn(t, sys, "reader", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		rw, _ := p.SharedRWLockAt(tt, va)
		if err := rw.EnterErr(tt, RWReader); err != ErrOwnerDead {
			t.Errorf("EnterErr(reader) = %v, want ErrOwnerDead", err)
			return
		}
		if !rw.MakeConsistent(tt) {
			t.Error("MakeConsistent refused")
		}
		rw.Exit(tt) // release the recovered readers lock
		// After recovery the lock serves normally.
		if err := rw.EnterErr(tt, RWWriter); err != nil {
			t.Errorf("EnterErr(writer) after recovery = %v, want nil", err)
			return
		}
		rw.Exit(tt)
	})
	waitProc(t, reader)
}

// TestRobustSemaOwnerDeath: a process dies between P and V on a
// shared semaphore; the sweep restores the consumed unit and the next
// PErr reports the death once.
func TestRobustSemaOwnerDeath(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	per := spawn(t, sys, "per", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		s, _ := p.SharedSemaAt(tt, va, 1)
		s.P(tt)
		tt.ExitProcess(1) // dies without V
	})
	waitProc(t, per)

	after := spawn(t, sys, "after", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		s, _ := p.SharedSemaAt(tt, va, 0)
		// The compensating V restored the unit, so this must not
		// block — and it reports the death.
		if err := s.PErr(tt); err != ErrOwnerDead {
			t.Errorf("PErr = %v, want ErrOwnerDead", err)
			return
		}
		s.V(tt)
		if err := s.PErr(tt); err != nil {
			t.Errorf("second PErr = %v, want nil (one-shot report)", err)
		}
	})
	waitProc(t, after)
}

// TestKillDuringBlockedSharedAcquisition is the satellite pinning
// both directions of a SIGKILL landing on a blocked shared-lock
// acquisition: killing the *waiter* reports the signal in WaitExit
// and leaves the lock serviceable (no leaked waiter count); killing
// the *owner* wakes the waiter with ErrOwnerDead.
func TestKillDuringBlockedSharedAcquisition(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var ownerHolds atomic.Bool
	owner := spawn(t, sys, "owner", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		mu.Enter(tt)
		ownerHolds.Store(true)
		for {
			tt.Checkpoint() // holds the lock until killed
		}
	})
	if !pollUntil(10*time.Second, ownerHolds.Load) {
		t.Fatal("owner never acquired")
	}

	waiter := spawn(t, sys, "waiter", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		mu.Enter(tt) // blocks forever; killed here
		t.Error("waiter acquired the lock unexpectedly")
	})
	if !pollUntil(10*time.Second, func() bool {
		return len(waiter.RT.LockWaiters()) > 0
	}) {
		t.Fatal("waiter never started blocking")
	}
	if err := waiter.Kill(SIGKILL); err != nil {
		t.Fatal(err)
	}
	if _, sig := waitProc(t, waiter); sig != SIGKILL {
		t.Fatalf("waiter exit signal = %v, want SIGKILL", sig)
	}

	// Direction 2: kill the owner while a fresh waiter blocks; the
	// waiter must wake with ErrOwnerDead, proving the dead waiter did
	// not corrupt the waiters word and the dead owner marked the lock.
	got := make(chan error, 1)
	waiter2 := spawn(t, sys, "waiter2", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		err := mu.EnterErr(tt)
		got <- err
		if err == ErrOwnerDead {
			mu.MakeConsistent(tt)
			mu.Exit(tt)
		}
	})
	if !pollUntil(10*time.Second, func() bool {
		return len(waiter2.RT.LockWaiters()) > 0
	}) {
		t.Fatal("waiter2 never started blocking")
	}
	if err := owner.Kill(SIGKILL); err != nil {
		t.Fatal(err)
	}
	if _, sig := waitProc(t, owner); sig != SIGKILL {
		t.Fatalf("owner exit signal = %v, want SIGKILL", sig)
	}
	waitProc(t, waiter2)
	if err := <-got; err != ErrOwnerDead {
		t.Fatalf("waiter2 EnterErr = %v, want ErrOwnerDead", err)
	}
}

// TestErrorCheckSelfDeadlock: an error-check mutex detects
// self-deadlock at lock time — EDEADLK, no parking.
func TestErrorCheckSelfDeadlock(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "edeadlk", ProcConfig{}, func(p *Proc, tt *Thread) {
		var mu Mutex
		mu.Init(VariantErrorCheck)
		mu.Enter(tt)
		if err := mu.EnterErr(tt); err != ErrDeadlock {
			t.Errorf("recursive EnterErr = %v, want ErrDeadlock", err)
		}
		mu.Exit(tt)
	})
	waitProc(t, p)
}

// TestErrorCheckABBADeadlock: two threads in one process close an
// ABBA cycle; the error-check mutex walks the wait-for graph at lock
// time and returns EDEADLK to the thread that would complete it.
func TestErrorCheckABBADeadlock(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "abba", ProcConfig{}, func(p *Proc, tt *Thread) {
		var a, b Mutex
		a.Init(VariantErrorCheck)
		b.Init(VariantErrorCheck)
		rt := tt.Runtime()
		rt.SetConcurrency(2) // the child needs its own LWP while tt polls
		a.Enter(tt)
		c, _ := rt.Create(func(ct *Thread, _ any) {
			b.Enter(ct)
			a.Enter(ct) // blocks: tt holds a
			a.Exit(ct)
			b.Exit(ct)
		}, nil, CreateOpts{Flags: ThreadWait})
		// Wait until the child is actually blocked on a.
		if !pollUntil(10*time.Second, func() bool {
			for _, w := range rt.LockWaiters() {
				if w.TID == c.ID() && w.HasOwner {
					return true
				}
			}
			return false
		}) {
			t.Error("child never blocked on a")
			return
		}
		if err := b.EnterErr(tt); err != ErrDeadlock {
			t.Errorf("EnterErr closing ABBA cycle = %v, want ErrDeadlock", err)
		}
		a.Exit(tt) // child proceeds
		tt.Wait(c.ID())
	})
	waitProc(t, p)
}

// TestTimedAcquisition: every timed entry point expires with
// ErrTimedOut while contended and succeeds after release — local and
// shared variants.
func TestTimedAcquisition(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "timed", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		var mu Mutex
		var rw RWLock
		var s Sema // count 0: P blocks
		mu.Enter(tt)
		rw.Enter(tt, RWWriter)
		c, _ := rt.Create(func(ct *Thread, _ any) {
			if err := mu.TimedEnter(ct, 2*time.Millisecond); err != ErrTimedOut {
				t.Errorf("TimedEnter = %v, want ErrTimedOut", err)
			}
			if err := rw.TimedRdLock(ct, 2*time.Millisecond); err != ErrTimedOut {
				t.Errorf("TimedRdLock = %v, want ErrTimedOut", err)
			}
			if err := rw.TimedWrLock(ct, 2*time.Millisecond); err != ErrTimedOut {
				t.Errorf("TimedWrLock = %v, want ErrTimedOut", err)
			}
			if err := s.TimedP(ct, 2*time.Millisecond); err != ErrTimedOut {
				t.Errorf("TimedP = %v, want ErrTimedOut", err)
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID())
		mu.Exit(tt)
		rw.Exit(tt)
		s.V(tt)
		// Uncontended timed acquisitions succeed.
		if err := mu.TimedEnter(tt, time.Millisecond); err != nil {
			t.Errorf("uncontended TimedEnter = %v", err)
		} else {
			mu.Exit(tt)
		}
		if err := rw.TimedWrLock(tt, time.Millisecond); err != nil {
			t.Errorf("uncontended TimedWrLock = %v", err)
		} else {
			rw.Exit(tt)
		}
		if err := s.TimedP(tt, time.Millisecond); err != nil {
			t.Errorf("uncontended TimedP = %v", err)
		}
	})
	waitProc(t, p)
}

// TestTimedSharedAcquisition: the kernel timeout path of the shared
// variants (usync SleepOpts.Timeout).
func TestTimedSharedAcquisition(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var holding atomic.Bool
	done := make(chan struct{})
	holder := spawn(t, sys, "holder", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		rw, _ := p.SharedRWLockAt(tt, va+64)
		mu.Enter(tt)
		rw.Enter(tt, RWWriter)
		holding.Store(true)
		for {
			select {
			case <-done:
				rw.Exit(tt)
				mu.Exit(tt)
				return
			default:
				tt.Checkpoint()
			}
		}
	})
	if !pollUntil(10*time.Second, holding.Load) {
		t.Fatal("holder never acquired")
	}
	waiter := spawn(t, sys, "waiter", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, _ := p.SharedMutexAt(tt, va)
		rw, _ := p.SharedRWLockAt(tt, va+64)
		s, _ := p.SharedSemaAt(tt, va+128, 0)
		if err := mu.TimedEnter(tt, 2*time.Millisecond); err != ErrTimedOut {
			t.Errorf("shared TimedEnter = %v, want ErrTimedOut", err)
		}
		if err := rw.TimedRdLock(tt, 2*time.Millisecond); err != ErrTimedOut {
			t.Errorf("shared TimedRdLock = %v, want ErrTimedOut", err)
		}
		if err := s.TimedP(tt, 2*time.Millisecond); err != ErrTimedOut {
			t.Errorf("shared TimedP = %v, want ErrTimedOut", err)
		}
	})
	waitProc(t, waiter)
	close(done)
	waitProc(t, holder)
}

// TestPanicContainment: a panicking thread body aborts only its own
// simulated process — SIGABRT with a core trace, reported through
// WaitExit — while other processes and the host binary continue.
func TestPanicContainment(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var otherRan atomic.Bool
	other := spawn(t, sys, "bystander", ProcConfig{}, func(p *Proc, tt *Thread) {
		p.Sleep(tt, 5*time.Millisecond)
		otherRan.Store(true)
	})
	bad := spawn(t, sys, "panicker", ProcConfig{}, func(p *Proc, tt *Thread) {
		c, _ := tt.Runtime().Create(func(ct *Thread, _ any) {
			panic("boom: simulated application bug")
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID()) // never returns: the panic kills the process
		t.Error("panicking process continued past Wait")
	})
	if _, sig := waitProc(t, bad); sig != SIGABRT {
		t.Fatalf("panicker exit signal = %v, want SIGABRT", sig)
	}
	if !bad.Process().DumpedCore() {
		t.Error("panic abort did not dump core")
	}
	if msg := bad.Process().AbortMessage(); !strings.Contains(msg, "boom") {
		t.Errorf("abort message %q does not carry the panic value", msg)
	}
	waitProc(t, other)
	if !otherRan.Load() {
		t.Error("bystander process was disturbed by the panic")
	}
}

// TestLWPAging: the pool grows for a burst (THREAD_NEW_LWP here;
// SIGWAITING growth feeds the same pool); after the burst, idle LWPs
// age out down toward one.
func TestLWPAging(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "aging", ProcConfig{LWPAgeTime: 20 * time.Millisecond},
		func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			var ids []ThreadID
			for i := 0; i < 3; i++ {
				c, _ := rt.Create(func(ct *Thread, _ any) {
					ct.Yield()
				}, nil, CreateOpts{Flags: ThreadWait | ThreadNewLWP})
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
			if grown := rt.PoolSize(); grown < 2 {
				t.Errorf("pool did not grow (size %d)", grown)
				return
			}
			// Main thread stays busy at user level while the extra
			// LWPs sit idle and age out.
			if !pollUntil(10*time.Second, func() bool { return rt.AgedOut() > 0 }) {
				t.Errorf("no LWP aged out (pool %d)", rt.PoolSize())
				return
			}
			// The runtime still runs new threads correctly after
			// shrinking.
			c, _ := rt.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
			tt.Wait(c.ID())
		})
	waitProc(t, p)
}

// TestLstatusReportsEdgesAndDeadlocks: /proc/<pid>/lstatus shows the
// wait-for edges with resolved owners and any detected cycles; the
// threads file carries the BLOCKED-ON column.
func TestLstatusReportsEdgesAndDeadlocks(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	pfs, err := procfs.Mount(sys.Kern, sys.FS)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var blocked atomic.Bool
	p := spawn(t, sys, "edges", ProcConfig{}, func(p *Proc, tt *Thread) {
		tt.Runtime().SetConcurrency(2) // child runs while tt blocks host-side
		var mu Mutex
		mu.Enter(tt)
		c, _ := tt.Runtime().Create(func(ct *Thread, _ any) {
			blocked.Store(true)
			mu.Enter(ct)
			mu.Exit(ct)
		}, nil, CreateOpts{Flags: ThreadWait})
		<-release
		mu.Exit(tt)
		tt.Wait(c.ID())
	})
	pfs.RegisterRuntime(p.RT)
	if !pollUntil(10*time.Second, func() bool {
		for _, w := range p.RT.LockWaiters() {
			if w.Kind == "mutex" && w.HasOwner {
				return true
			}
		}
		return false
	}) {
		t.Fatal("no blocked mutex waiter appeared")
	}
	if err := pfs.Refresh(); err != nil {
		t.Fatal(err)
	}
	reader := spawn(t, sys, "reader", ProcConfig{}, func(rp *Proc, tt *Thread) {
		read := func(path string) string {
			fd, err := rp.Open(tt, path, ORdOnly)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return ""
			}
			defer rp.Close(tt, fd)
			var out []byte
			buf := make([]byte, 512)
			for {
				n, err := rp.Read(tt, fd, buf)
				out = append(out, buf[:n]...)
				if err != nil {
					return string(out)
				}
			}
		}
		base := "/proc/" + itoa(int(p.PID()))
		ls := read(base + "/lstatus")
		if !strings.Contains(ls, "mutex") {
			t.Errorf("lstatus has no mutex edge:\n%s", ls)
		}
		if !strings.Contains(ls, "deadlocks: 0") {
			t.Errorf("lstatus reports deadlocks in a deadlock-free process:\n%s", ls)
		}
		th := read(base + "/threads")
		if !strings.Contains(th, "mutex:") {
			t.Errorf("threads file has no BLOCKED-ON mutex entry:\n%s", th)
		}
	})
	waitProc(t, reader)
	close(release)
	waitProc(t, p)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestTsyncMisusePanicContainment: the tsync misuse panics — exiting
// a mutex the thread does not hold, releasing an unheld rwlock,
// downgrading without the writer lock — must route through the same
// panic-as-SIGABRT containment as any application panic: the
// offending simulated process dies with SIGABRT and the panic text in
// its abort message, and neither the host binary nor a bystander
// process is disturbed.
func TestTsyncMisusePanicContainment(t *testing.T) {
	cases := []struct {
		name string
		want string
		body func(p *Proc, tt *Thread)
	}{
		{
			// Only the error-check variant detects the misuse, as on
			// SunOS; the default variant leaves it undefined.
			name: "mutex-exit-unheld",
			want: "mutex_exit of a lock not held",
			body: func(p *Proc, tt *Thread) {
				var mu Mutex
				mu.Init(VariantErrorCheck)
				mu.Exit(tt)
			},
		},
		{
			name: "rw-exit-unheld",
			want: "rw_exit of an unheld lock",
			body: func(p *Proc, tt *Thread) {
				var rw RWLock
				rw.Exit(tt)
			},
		},
		{
			name: "rw-downgrade-unheld",
			want: "rw_downgrade without the writer lock",
			body: func(p *Proc, tt *Thread) {
				var rw RWLock
				rw.Enter(tt, RWReader)
				rw.Downgrade(tt)
			},
		},
	}
	sys := NewSystem(Options{NCPU: 2})
	var bystanderRan atomic.Bool
	bystander := spawn(t, sys, "bystander", ProcConfig{}, func(p *Proc, tt *Thread) {
		p.Sleep(tt, 5*time.Millisecond)
		bystanderRan.Store(true)
	})
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			bad := spawn(t, sys, "misuser-"+tc.name, ProcConfig{}, func(p *Proc, tt *Thread) {
				tc.body(p, tt)
				t.Error("misusing thread ran past the misuse")
			})
			if _, sig := waitProc(t, bad); sig != SIGABRT {
				t.Fatalf("exit signal = %v, want SIGABRT", sig)
			}
			if msg := bad.Process().AbortMessage(); !strings.Contains(msg, tc.want) {
				t.Errorf("abort message %q missing %q", msg, tc.want)
			}
		})
	}
	waitProc(t, bystander)
	if !bystanderRan.Load() {
		t.Error("bystander process was disturbed by the misuse aborts")
	}
}
