package mt

// System-level fast-forward: Options.FastForward puts the machine on
// the virtual fast-forward clock, so sleep-heavy workloads complete
// in the time their computation takes, not the time they sleep.

import (
	"testing"
	"time"
)

// TestFastForwardSleepHeavyWorkload: threads sleeping a combined 9+
// virtual seconds finish in real milliseconds, the virtual clock lands
// past the last deadline, and the jumps are stamped into the event
// rings as EvFastForward records.
func TestFastForwardSleepHeavyWorkload(t *testing.T) {
	sys := NewSystem(Options{
		NCPU:        1,
		FastForward: true,
		EventRing:   1 << 12,
	})
	start := time.Now()
	p := spawn(t, sys, "ff-sleepers", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		var ids []ThreadID
		for i := 0; i < 3; i++ {
			i := i
			c, err := rt.Create(func(ct *Thread, _ any) {
				for j := 0; j < 3; j++ {
					d := time.Duration(i+1) * time.Second
					if err := p.Sleep(ct, d); err != nil {
						t.Errorf("sleep: %v", err)
						return
					}
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			tt.Wait(id)
		}
	})
	waitProc(t, p)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("9s of virtual sleeping took %v real time; fast-forward is not jumping", elapsed)
	}
	ff := sys.FastForward()
	if ff == nil {
		t.Fatal("Options.FastForward set but System.FastForward() is nil")
	}
	if now := sys.Clock().Now(); now < 9*time.Second {
		t.Fatalf("virtual clock at %v after a 3x3s sleeper, want >= 9s", now)
	}
	jumps, skipped := ff.Stats()
	if jumps == 0 || skipped < 8*time.Second {
		t.Fatalf("Stats() = %d jumps, %v skipped; want jumps > 0 and most of the 9s skipped",
			jumps, skipped)
	}
	var ffEvents int
	for _, r := range sys.Events().Kinds(EvFastForward) {
		ffEvents++
		if r.Arg == 0 {
			t.Error("EvFastForward with zero skipped-nanoseconds arg")
		}
	}
	if ffEvents == 0 {
		t.Fatal("no EvFastForward records in the rings despite jumps")
	}
}

// TestFastForwardUnderChaos: the fast-forward clock composes with
// chaos timer jitter (deadlines are perturbed as they are armed, the
// jump honors the jittered order) and with the perturbed schedules of
// a sweep — a timed-wait workload keeps its invariants and still
// finishes in real milliseconds.
func TestFastForwardUnderChaos(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		o := chaosOpts(2, seed)
		o.FastForward = true
		sys := NewSystem(o)
		start := time.Now()
		var woken int
		p := spawn(t, sys, "ff-chaos", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			// Two LWPs: the parent's kernel sleeps hold its LWP (a
			// timed sleep is not "indefinite", so no SIGWAITING
			// growth), and the timed waiter needs one of its own —
			// the paper's thr_setconcurrency remedy.
			rt.SetConcurrency(2)
			var mu Mutex
			var cv Cond
			done := false
			c, err := rt.Create(func(ct *Thread, _ any) {
				mu.Enter(ct)
				for !done {
					// Timed waits hours out: only a jumping clock
					// meets the real-time budget below.
					cv.TimedWait(ct, &mu, time.Hour)
					woken++
				}
				mu.Exit(ct)
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			// Sleep half-hours until the waiter has timed out at
			// least once (chaos may EINTR any individual sleep —
			// just sleep again).
			mu.Enter(tt)
			for woken == 0 {
				mu.Exit(tt)
				_ = p.Sleep(tt, 30*time.Minute)
				mu.Enter(tt)
			}
			done = true
			cv.Broadcast(tt)
			mu.Exit(tt)
			tt.Wait(c.ID())
		})
		waitProc(t, p)
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("seed %d: hours of virtual waiting took %v real time", seed, elapsed)
		}
		if woken == 0 {
			t.Fatalf("seed %d: the timed waiter never woke", seed)
		}
	}
}
