package mt

// Resource-exhaustion sweeps: the chaos source additionally injects
// allocation failures, LWP spawn failures, and stack carve failures
// (chaos.FaultConfig), on top of a process run with a real LWP rlimit
// and thread cap. The invariant is complete unwinding: every failed
// create must report EAGAIN and leave nothing behind — no leaked
// sleep-queue links, turnstiles, registered threads, or lock-graph
// edges — and the microstate accounting must stay exact. A failing
// seed replays with:
//
//	go test ./mt -run TestChaosExhaustion -chaos.seed=N

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/vm"
)

// faultOpts builds Options for an exhaustion sweep iteration: chaos at
// the default schedule-perturbation rates plus the resource-fault
// knobs, simulated path-length spins disabled for speed.
func faultOpts(ncpu int, seed uint64) Options {
	return Options{
		NCPU:             ncpu,
		Chaos:            NewFaultChaos(seed),
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
	}
}

// spawnFault spawns a process under fault injection. Spawn itself can
// fail with EAGAIN (the initial pool LWP is subject to spawn faults);
// each retry advances the chaos decision counters, so a retry is a
// genuinely different schedule, not a tight replay of the same
// failure. Non-EAGAIN failures are fatal.
func spawnFault(t *testing.T, sys *System, name string, cfg ProcConfig, body func(p *Proc, tt *Thread)) *Proc {
	t.Helper()
	for try := 0; try < 50; try++ {
		ch := make(chan *Proc, 1)
		p, err := sys.Spawn(name, func(tt *Thread, _ any) {
			body(<-ch, tt)
		}, nil, cfg)
		if err == nil {
			ch <- p
			return p
		}
		if !errors.Is(err, ErrAgain) {
			t.Fatalf("spawn: non-EAGAIN failure: %v", err)
		}
	}
	t.Fatal("spawn: EAGAIN persisted for 50 tries")
	return nil
}

// TestChaosExhaustionUnwind: a process with an LWP rlimit and a thread
// cap creates a mix of unbound, new-LWP, and bound threads under fault
// injection. Every failure must be EAGAIN; at quiesce nothing may be
// leaked and all accounting must balance.
func TestChaosExhaustionUnwind(t *testing.T) {
	const (
		lwpLimit   = 5
		maxThreads = 10
		attempts   = 24
	)
	var sweepFailures atomic.Int64
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, faultOpts(2, seed))
		cfg := ProcConfig{LWPLimit: lwpLimit, MaxThreads: maxThreads}
		var mu Mutex
		counter := 0
		p := spawnFault(t, sys, "exhaust", cfg, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			var workers []*Thread
			failed := 0
			for i := 0; i < attempts; i++ {
				flags := ThreadWait
				switch i % 3 {
				case 1:
					flags |= ThreadNewLWP
				case 2:
					if i%2 == 0 {
						flags |= ThreadBindLWP
					}
				}
				w, err := rt.Create(func(ct *Thread, _ any) {
					mu.Enter(ct)
					counter++
					ct.Checkpoint()
					mu.Exit(ct)
					ct.Yield()
				}, nil, CreateOpts{Flags: flags})
				if err != nil {
					if !errors.Is(err, ErrAgain) {
						t.Errorf("create %d: non-EAGAIN failure: %v", i, err)
						return
					}
					failed++
					continue
				}
				workers = append(workers, w)
			}
			for _, w := range workers {
				tt.Wait(w.ID())
			}
			sweepFailures.Add(int64(failed))

			// Quiesce invariants: the failures unwound completely.
			if counter != len(workers) {
				t.Errorf("counter = %d, want %d (threads lost or duplicated)", counter, len(workers))
			}
			if got := rt.NumThreads(); got != 1 {
				t.Errorf("%d threads registered after quiesce, want 1 (main)", got)
			}
			if got := rt.RunnableThreads(); got != 0 {
				t.Errorf("%d runnable threads after quiesce", got)
			}
			if lw := rt.LockWaiters(); len(lw) != 0 {
				t.Errorf("leaked lock-graph edges after quiesce: %v", lw)
			}
			if sq, ts := rt.ResidualLinks(); sq != 0 || ts != 0 {
				t.Errorf("leaked links after quiesce: %d sleepq, %d turnstiles", sq, ts)
			}
			if n := p.Process().NumLWPs(); n > lwpLimit {
				t.Errorf("%d live LWPs, rlimit is %d", n, lwpLimit)
			}
			// Microstate accounting stays exact through failed
			// creates (uncreate closes the accounting interval).
			if ms := tt.Microstates(); ms.Sum() != ms.Total {
				t.Errorf("main thread microstates: Sum %v != Total %v", ms.Sum(), ms.Total)
			}
			for _, w := range workers {
				if ms := w.Microstates(); ms.Sum() != ms.Total || !ms.Dead {
					t.Errorf("worker %d microstates: Sum %v Total %v Dead %v", w.ID(), ms.Sum(), ms.Total, ms.Dead)
				}
			}
			for _, l := range p.Process().LWPs() {
				if u := l.Microstates(); u.Sum() != u.Total {
					t.Errorf("lwp %d microstates: Sum %v != Total %v", l.ID(), u.Sum(), u.Total)
				}
			}
		})
		waitProc(t, p)
	})
	// Across a full sweep the fault knobs must actually have fired;
	// a single-seed replay may legitimately see none.
	if *chaosSeedFlag == 0 {
		t.Cleanup(func() {
			if sweepFailures.Load() == 0 {
				t.Error("no create ever failed across the sweep: fault injection is not firing")
			}
		})
	}
}

// TestChaosExhaustionAddressSpace: mmap/stack traffic against a byte
// rlimit under allocation faults. Refused mappings must be ENOMEM and
// must leave the address space untouched: the mapped-byte gauge never
// exceeds the limit and returns exactly to its starting point after
// everything is unmapped.
func TestChaosExhaustionAddressSpace(t *testing.T) {
	const (
		asLimit = 512 << 10
		mapLen  = 64 << 10
	)
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, faultOpts(2, seed))
		cfg := ProcConfig{ASLimitBytes: asLimit}
		p := spawnFault(t, sys, "exhaust-vm", cfg, func(p *Proc, tt *Thread) {
			base := p.AS.Mapped()
			var vas []int64
			var stacks []int64
			for i := 0; i < 12; i++ {
				va, err := p.Mmap(tt, 0, mapLen, vm.ProtRead|vm.ProtWrite, vm.MapPrivate, -1, 0)
				if err != nil {
					if !errors.Is(err, ErrNoMem) {
						t.Errorf("mmap %d: non-ENOMEM failure: %v", i, err)
						return
					}
				} else {
					vas = append(vas, va)
				}
				if i%3 == 0 {
					sb, err := p.MapStack(tt, 32<<10)
					if err != nil {
						if !errors.Is(err, ErrNoMem) {
							t.Errorf("mapstack %d: non-ENOMEM failure: %v", i, err)
							return
						}
					} else {
						stacks = append(stacks, sb)
					}
				}
				if m := p.AS.Mapped(); m > asLimit {
					t.Errorf("mapped %d bytes exceeds limit %d", m, asLimit)
					return
				}
			}
			for _, va := range vas {
				if err := p.Munmap(tt, va, mapLen); err != nil {
					t.Errorf("munmap %#x: %v", va, err)
				}
			}
			for _, sb := range stacks {
				if err := p.UnmapStack(tt, sb, 32<<10); err != nil {
					t.Errorf("unmapstack %#x: %v", sb, err)
				}
			}
			if m := p.AS.Mapped(); m != base {
				t.Errorf("mapped %d bytes after full unmap, want %d (accounting leak)", m, base)
			}
		})
		waitProc(t, p)
	})
}

// TestPoolGrowthBackoff: with the LWP rlimit blocking SIGWAITING pool
// growth, the runtime must back off instead of spinning — a bounded
// failure count while the limit holds — and must recover (grow the
// pool) once the limit is lifted, driven by its own retry timer.
func TestPoolGrowthBackoff(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	ready := make(chan *Proc, 1)
	p := spawn(t, sys, "backoff", ProcConfig{LWPLimit: 2, MaxAutoLWPs: 8}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rfd, _, err := p.Pipe(tt)
		if err != nil {
			t.Error(err)
			return
		}
		var ids []ThreadID
		for i := 0; i < 4; i++ {
			c, err := rt.Create(func(ct *Thread, _ any) {
				// Blocks in the kernel forever: the release below is
				// SIGKILL, not a write.
				buf := make([]byte, 1)
				p.Read(ct, rfd, buf)
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Errorf("create reader %d: %v", i, err)
				return
			}
			ids = append(ids, c.ID())
		}
		ready <- p
		for _, id := range ids {
			tt.Wait(id)
		}
	})
	<-ready

	// Phase 1: growth hits the rlimit. Failures must appear (the
	// backoff path ran) and stay bounded (no tight retry loop): at
	// 1ms..128ms exponential backoff even a generous window sees only
	// a handful of attempts.
	deadline := time.Now().Add(10 * time.Second)
	var failures uint64
	for {
		failures, _, _ = p.RT.GrowthStats()
		if failures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool growth never failed against the rlimit")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	failures, _, backoff := p.RT.GrowthStats()
	if backoff == 0 {
		t.Error("no backoff recorded after growth failure")
	}
	if failures > 20 {
		t.Errorf("%d growth failures in ~100ms: backoff is not damping the retry loop", failures)
	}

	// Phase 2: lift the limit; the armed retry must grow the pool
	// without any new SIGWAITING edge.
	p.Process().SetLWPLimit(0)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if p.RT.PoolSize() >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not recover after lifting the rlimit (size %d)", p.RT.PoolSize())
		}
		time.Sleep(time.Millisecond)
	}
	p.Kill(SIGKILL)
	waitProc(t, p)
}

// TestWatchdogHealth: the deadman watchdog flags a thread blocked on a
// mutex past the deadline (with its wait-for edge) and an LWP pinned
// on-CPU, and the report clears once they move on.
func TestWatchdogHealth(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	hold := make(chan struct{})
	var mid ThreadID
	p := spawn(t, sys, "watchdog", ProcConfig{WatchdogDeadline: 5 * time.Millisecond}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		var mu Mutex
		mu.Enter(tt)
		w, err := rt.Create(func(ct *Thread, _ any) {
			mu.Enter(ct)
			mu.Exit(ct)
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		mid = w.ID()
		// Yield until the waiter has observably parked on the mutex:
		// SIGWAITING will not grow the pool while the bound spinner
		// below holds a CPU, so the waiter must get its LWP time
		// before the main thread goes to sleep.
		for w.State() != ThreadSleeping {
			tt.Yield()
		}
		spin, err := rt.Create(func(ct *Thread, _ any) {
			// A goroutine that stops hitting checkpoints while
			// holding its LWP: the kernel sees the LWP on-CPU the
			// whole time.
			<-hold
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(tt, 50*time.Millisecond)

		rep := p.Health(0)
		if rep.Deadline != 5*time.Millisecond {
			t.Errorf("deadline = %v, want 5ms", rep.Deadline)
		}
		foundMutexWaiter := false
		for _, th := range rep.StuckThreads {
			if th.ID == mid && th.State == MSLock && strings.HasPrefix(th.BlockedOn, "mutex") {
				foundMutexWaiter = true
			}
		}
		if !foundMutexWaiter {
			t.Errorf("mutex waiter %d not flagged: %+v", mid, rep.StuckThreads)
		}
		if len(rep.StuckLWPs) == 0 {
			t.Errorf("pinned LWP not flagged: %+v", rep.StuckLWPs)
		} else if rep.StuckLWPs[0].OnCPUFor <= 5*time.Millisecond {
			t.Errorf("flagged LWP on-CPU for %v, want > deadline", rep.StuckLWPs[0].OnCPUFor)
		}

		close(hold)
		mu.Exit(tt)
		tt.Wait(mid)
		tt.Wait(spin.ID())
		if rep := p.Health(0); !rep.Healthy() {
			t.Errorf("report still unhealthy after release: %+v", rep)
		}
	})
	waitProc(t, p)
}
