package mt

// Chaos sweeps: every test here runs the same invariant workload
// under many seeded perturbation schedules (forced preemptions,
// dispatch reordering, spurious wakeups, injected EINTR, early
// SIGWAITING, timer jitter). A failing seed reproduces exactly:
//
//	go test ./mt -run TestChaos -chaos.seed=N
//
// The seeds are deterministic, so CI failures replay locally.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sunosmt/internal/sim"
)

var chaosSeedFlag = flag.Uint64("chaos.seed", 0,
	"run chaos sweeps with this single seed (replay a failure)")

var chaosFFFlag = flag.Bool("chaos.fastforward", false,
	"run chaos sweeps on the virtual fast-forward clock (idle sleep "+
		"time is skipped, so timeout-heavy sweeps finish in compute time)")

// chaosSeeds returns the seed set for a sweep: the replay seed if
// -chaos.seed was given, a short set under -short (the -race CI
// tier), the full sweep otherwise.
func chaosSeeds() []uint64 {
	if *chaosSeedFlag != 0 {
		return []uint64{*chaosSeedFlag}
	}
	n := 100
	if testing.Short() {
		n = 20
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// sweep runs fn once per seed as parallel subtests, logging a replay
// command for any failing seed.
func sweep(t *testing.T, fn func(t *testing.T, seed uint64)) {
	for _, seed := range chaosSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			t.Cleanup(func() {
				if t.Failed() {
					t.Logf("replay: go test ./mt -run '%s' -chaos.seed=%d", t.Name(), seed)
				}
			})
			fn(t, seed)
		})
	}
}

// chaosOpts builds Options for a sweep iteration: chaos at the
// default rates, simulated path-length spins disabled for speed.
func chaosOpts(ncpu int, seed uint64) Options {
	return Options{
		NCPU:             ncpu,
		Chaos:            NewChaos(seed),
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
	}
}

// chaosSystem boots a sweep iteration's system, applying the two
// sweep-wide switches: -chaos.fastforward moves the run onto the
// virtual fast-forward clock, and CHAOS_JOURNAL_DIR (set by CI)
// turns on schedule recording and dumps the journal of any failing
// test there, so the exact failing schedule can be replayed with
// NewReplayChaos rather than re-searched from the seed.
func chaosSystem(t *testing.T, o Options) *System {
	o.FastForward = *chaosFFFlag
	dir := os.Getenv("CHAOS_JOURNAL_DIR")
	if dir != "" {
		o.Chaos.StartRecording()
		if o.EventRing == 0 {
			o.EventRing = 8192
		}
	}
	sys := NewSystem(o)
	if dir != "" {
		t.Cleanup(func() {
			if !t.Failed() {
				return
			}
			path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".journal")
			if err := sys.Schedule().WriteFile(path); err != nil {
				t.Logf("schedule journal dump failed: %v", err)
			} else {
				t.Logf("schedule journal: %s", path)
			}
		})
	}
	return sys
}

// TestChaosMutexExclusion: N threads increment a plain counter under
// a mutex; a holders gauge catches any simultaneous critical-section
// occupancy the perturbed schedules might expose.
func TestChaosMutexExclusion(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const nThreads, iters = 4, 40
		sys := chaosSystem(t, chaosOpts(2, seed))
		var mu Mutex
		var holders, violations atomic.Int32
		counter := 0
		p := spawn(t, sys, "chaos-mutex", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			ids := make([]ThreadID, 0, nThreads)
			for i := 0; i < nThreads; i++ {
				c, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						mu.Enter(ct)
						if holders.Add(1) != 1 {
							violations.Add(1)
						}
						counter++
						ct.Checkpoint()
						holders.Add(-1)
						mu.Exit(ct)
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		if v := violations.Load(); v != 0 {
			t.Fatalf("mutual exclusion violated %d times", v)
		}
		if counter != nThreads*iters {
			t.Fatalf("counter = %d, want %d (lost updates)", counter, nThreads*iters)
		}
	})
}

// TestChaosRWLockExclusion: readers and writers keep active-holder
// gauges; writers must be alone, readers must never overlap a writer.
// Writers periodically downgrade, readers periodically try-upgrade,
// so both conversion paths run under perturbed schedules.
func TestChaosRWLockExclusion(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const iters = 25
		sys := chaosSystem(t, chaosOpts(2, seed))
		var rw RWLock
		var ractive, wactive, violations atomic.Int32
		check := func(ok bool) {
			if !ok {
				violations.Add(1)
			}
		}
		writer := func(ct *Thread, _ any) {
			for j := 0; j < iters; j++ {
				rw.Enter(ct, RWWriter)
				check(wactive.Add(1) == 1 && ractive.Load() == 0)
				ct.Checkpoint()
				if j%3 == 0 {
					// Convert to a readers lock while still
					// exclusive, then release as a reader.
					ractive.Add(1)
					wactive.Add(-1)
					rw.Downgrade(ct)
					check(wactive.Load() == 0)
					ct.Checkpoint()
					ractive.Add(-1)
					rw.Exit(ct)
					continue
				}
				wactive.Add(-1)
				rw.Exit(ct)
			}
		}
		reader := func(ct *Thread, _ any) {
			for j := 0; j < iters; j++ {
				rw.Enter(ct, RWReader)
				ractive.Add(1)
				check(wactive.Load() == 0)
				ct.Checkpoint()
				if j%5 == 0 && rw.TryUpgrade(ct) {
					ractive.Add(-1)
					check(wactive.Add(1) == 1 && ractive.Load() == 0)
					ct.Checkpoint()
					wactive.Add(-1)
					rw.Exit(ct)
					continue
				}
				ractive.Add(-1)
				rw.Exit(ct)
			}
		}
		p := spawn(t, sys, "chaos-rw", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			var ids []ThreadID
			for _, body := range []Func{writer, writer, reader, reader} {
				c, err := rt.Create(body, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		if v := violations.Load(); v != 0 {
			t.Fatalf("rwlock exclusion violated %d times", v)
		}
	})
}

// TestChaosSemaCounting: 6 threads share 3 permits; an occupancy
// gauge catches any over-admission under spurious wakeups and wake
// reordering.
func TestChaosSemaCounting(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const permits, nThreads, iters = 3, 6, 20
		sys := chaosSystem(t, chaosOpts(2, seed))
		var sema Sema
		sema.Init(permits)
		var inside, violations atomic.Int32
		p := spawn(t, sys, "chaos-sema", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			var ids []ThreadID
			for i := 0; i < nThreads; i++ {
				c, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						sema.P(ct)
						if inside.Add(1) > permits {
							violations.Add(1)
						}
						ct.Checkpoint()
						inside.Add(-1)
						sema.V(ct)
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		if v := violations.Load(); v != 0 {
			t.Fatalf("semaphore admitted more than %d holders %d times", permits, v)
		}
		if c := sema.Count(); c != permits {
			t.Fatalf("final count = %d, want %d", c, permits)
		}
	})
}

// TestChaosCrossProcessMutex: a parent and its forked child contend
// on a process-shared mutex placed in a mapped file, guarding a
// plain shared counter. WaitChild retries on the EINTRs chaos
// injects into interruptible kernel sleeps.
func TestChaosCrossProcessMutex(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const iters = 30
		sys := chaosSystem(t, chaosOpts(2, seed))
		var holders, violations atomic.Int32
		counter := 0
		loop := func(ct *Thread, m *Mutex) {
			for j := 0; j < iters; j++ {
				m.Enter(ct)
				if holders.Add(1) != 1 {
					violations.Add(1)
				}
				counter++
				ct.Checkpoint()
				holders.Add(-1)
				m.Exit(ct)
			}
		}
		p := spawn(t, sys, "chaos-xproc", ProcConfig{}, func(p *Proc, tt *Thread) {
			fd, err := p.Open(tt, "/tmp/chaos-shared", OCreate|ORdWr)
			if err != nil {
				t.Error(err)
				return
			}
			va, err := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu, err := p.SharedMutexAt(tt, va)
			if err != nil {
				t.Error(err)
				return
			}
			childCh := make(chan *Proc, 1)
			child, err := p.Fork1(tt, func(ct *Thread, _ any) {
				cp := <-childCh
				cmu, err := cp.SharedMutexAt(ct, va)
				if err != nil {
					t.Error(err)
					return
				}
				loop(ct, cmu)
			}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			childCh <- child
			loop(tt, mu)
			for {
				if _, err := p.WaitChild(tt, -1); !errors.Is(err, sim.ErrIntr) {
					break
				}
			}
		})
		waitProc(t, p)
		if v := violations.Load(); v != 0 {
			t.Fatalf("cross-process exclusion violated %d times", v)
		}
		if counter != 2*iters {
			t.Fatalf("counter = %d, want %d (lost updates)", counter, 2*iters)
		}
	})
}

// TestChaosForkHeldSharedLock: the paper's fork pitfall under
// perturbation — a child forked while the parent holds a shared lock
// must see it held and block until the parent's release.
func TestChaosForkHeldSharedLock(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))
		var childBlocked, childGot atomic.Bool
		p := spawn(t, sys, "chaos-forklock", ProcConfig{}, func(p *Proc, tt *Thread) {
			fd, _ := p.Open(tt, "/tmp/chaos-locked", OCreate|ORdWr)
			va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
			mu, err := p.SharedMutexAt(tt, va)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Enter(tt)
			childCh := make(chan *Proc, 1)
			child, err := p.Fork1(tt, func(ct *Thread, _ any) {
				cp := <-childCh
				cmu, err := cp.SharedMutexAt(ct, va)
				if err != nil {
					t.Error(err)
					return
				}
				if cmu.TryEnter(ct) {
					t.Error("child acquired a lock the parent holds across fork")
					return
				}
				childBlocked.Store(true)
				cmu.Enter(ct)
				childGot.Store(true)
				cmu.Exit(ct)
			}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			childCh <- child
			for !childBlocked.Load() {
				tt.Yield()
			}
			mu.Exit(tt)
			for {
				if _, err := p.WaitChild(tt, -1); !errors.Is(err, sim.ErrIntr) {
					break
				}
			}
		})
		waitProc(t, p)
		if !childGot.Load() {
			t.Fatal("child never acquired the lock after parent's release")
		}
	})
}

// TestChaosSignalMasks: a thread that blocks SIGUSR1 must not see it
// delivered — even under forced preemptions and wake reordering —
// while an unmasked sibling does; unblocking releases the pending
// signal.
func TestChaosSignalMasks(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))
		var maskedT, openT atomic.Pointer[Thread]
		var gotMasked, gotOpen atomic.Int32
		var earlyMasked atomic.Bool
		var mready, oready, unblock, release atomic.Bool
		p := spawn(t, sys, "chaos-sig", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			rt.Signal(SIGUSR1, SigCatch, func(ht *Thread, _ Signal) {
				switch ht {
				case maskedT.Load():
					if !unblock.Load() {
						earlyMasked.Store(true)
					}
					gotMasked.Add(1)
				case openT.Load():
					gotOpen.Add(1)
				}
			})
			m, err := rt.Create(func(ct *Thread, _ any) {
				ct.SigSetMask(SigBlock, sim.MakeSigset(SIGUSR1))
				mready.Store(true)
				for !unblock.Load() {
					ct.Yield()
				}
				ct.SigSetMask(SigUnblock, sim.MakeSigset(SIGUSR1))
				for !release.Load() {
					ct.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			maskedT.Store(m)
			o, err := rt.Create(func(ct *Thread, _ any) {
				oready.Store(true)
				for !release.Load() {
					ct.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			openT.Store(o)
			for !mready.Load() || !oready.Load() {
				tt.Yield()
			}
			tt.Kill(m, SIGUSR1)
			tt.Kill(o, SIGUSR1)
			for gotOpen.Load() == 0 {
				tt.Yield()
			}
			unblock.Store(true)
			for gotMasked.Load() == 0 {
				tt.Yield()
			}
			release.Store(true)
			tt.Wait(m.ID())
			tt.Wait(o.ID())
		})
		waitProc(t, p)
		if earlyMasked.Load() {
			t.Fatal("SIGUSR1 delivered to a thread that had it blocked")
		}
		if gotOpen.Load() == 0 || gotMasked.Load() == 0 {
			t.Fatalf("deliveries: masked=%d open=%d, want both > 0",
				gotMasked.Load(), gotOpen.Load())
		}
	})
}

// TestChaosJournalDeterminism: the acceptance pin — the same seed on
// the same workload produces the identical chaos journal, so any
// failing seed replays exactly. NCPU=1 with SIGWAITING growth off
// keeps the whole run on one LWP, where every chaos decision point
// is reached in a reproducible order.
func TestChaosJournalDeterminism(t *testing.T) {
	run := func() []string {
		src := NewChaos(42)
		sys := NewSystem(Options{
			NCPU:             1,
			Chaos:            src,
			LWPCreateCost:    -1,
			KernelSwitchCost: -1,
		})
		var mu Mutex
		counter := 0
		p := spawn(t, sys, "chaos-det", ProcConfig{DisableSigwaiting: true}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			body := func(ct *Thread, _ any) {
				for j := 0; j < 100; j++ {
					mu.Enter(ct)
					counter++
					mu.Exit(ct)
					ct.Yield()
				}
			}
			c, err := rt.Create(body, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			body(tt, nil)
			tt.Wait(c.ID())
		})
		waitProc(t, p)
		if counter != 200 {
			t.Fatalf("counter = %d, want 200", counter)
		}
		var lines []string
		for _, e := range src.Journal().Events() {
			lines = append(lines, e.Kind+" "+e.Msg)
		}
		return lines
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("seed 42 produced an empty chaos journal; nothing was explored")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journal diverges at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// brokenMutex is a deliberately racy lock: the test-and-set is split
// by a preemption point, exactly the bug class the chaos sweep
// exists to catch.
type brokenMutex struct{ locked bool }

func (b *brokenMutex) enter(t *Thread) {
	for {
		if !b.locked {
			t.Checkpoint() // racy window: check and set are separated
			b.locked = true
			return
		}
		t.Yield()
	}
}

func (b *brokenMutex) exit() { b.locked = false }

// TestChaosCatchesBrokenMutex: the negative control — the sweep must
// detect the broken lock within a handful of seeds, or the whole
// exercise proves nothing.
func TestChaosCatchesBrokenMutex(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		sys := chaosSystem(t, chaosOpts(1, seed))
		var bm brokenMutex
		var holders, violations atomic.Int32
		p := spawn(t, sys, "chaos-broken", ProcConfig{DisableSigwaiting: true}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			body := func(ct *Thread, _ any) {
				for j := 0; j < 150; j++ {
					bm.enter(ct)
					if holders.Add(1) != 1 {
						violations.Add(1)
					}
					ct.Checkpoint()
					if holders.Load() != 1 {
						violations.Add(1)
					}
					holders.Add(-1)
					bm.exit()
				}
			}
			c, err := rt.Create(body, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			body(tt, nil)
			tt.Wait(c.ID())
		})
		waitProc(t, p)
		if violations.Load() > 0 {
			t.Logf("broken mutex caught at seed %d", seed)
			return
		}
	}
	t.Fatal("chaos sweep failed to catch a deliberately broken mutex in 20 seeds")
}
