// Package sunosmt is a production-quality Go reproduction of "SunOS
// Multi-thread Architecture" (Powell, Kleiman, Barton, Shah, Stein,
// Weeks — USENIX Winter 1991): extremely lightweight user-level
// threads multiplexed on kernel-supported LWPs, with the paper's
// synchronization facilities, signal model, and reinterpreted UNIX
// semantics, all built on a simulated SunOS 5-style kernel.
//
// The public API lives in package sunosmt/mt; see README.md for a
// tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured evaluation. The root package exists to
// host the repository-level benchmarks (bench_test.go), which
// regenerate the paper's Figure 5 and Figure 6.
package sunosmt
